"""Tests for the discrete-event scheduler."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.common.errors import SimulationError
from repro.simulator.engine import EventScheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(2.0, lambda: order.append("b"))
        scheduler.schedule(1.0, lambda: order.append("a"))
        scheduler.schedule(3.0, lambda: order.append("c"))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_ties_broken_by_insertion_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(1.0, lambda: order.append("first"))
        scheduler.schedule(1.0, lambda: order.append("second"))
        scheduler.run()
        assert order == ["first", "second"]

    def test_now_advances_with_events(self):
        scheduler = EventScheduler()
        seen = []
        scheduler.schedule(5.0, lambda: seen.append(scheduler.now))
        scheduler.run()
        assert seen == [5.0]
        assert scheduler.now == 5.0

    def test_schedule_in_the_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(SimulationError):
            scheduler.schedule(0.5, lambda: None)

    def test_schedule_after(self):
        scheduler = EventScheduler()
        times = []
        scheduler.schedule_after(1.0, lambda: times.append(scheduler.now))
        scheduler.run()
        assert times == [1.0]

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            EventScheduler().schedule_after(-1.0, lambda: None)


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        scheduler.run()
        assert fired == []

    def test_is_empty_accounts_for_cancellations(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        assert not scheduler.is_empty()
        handle.cancel()
        assert scheduler.is_empty()


class TestRunUntil:
    def test_run_until_stops_at_horizon(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(1.0, lambda: fired.append(1))
        scheduler.schedule(5.0, lambda: fired.append(5))
        executed = scheduler.run_until(2.0)
        assert executed == 1
        assert fired == [1]
        assert scheduler.now == 2.0
        scheduler.run_until(10.0)
        assert fired == [1, 5]

    def test_events_can_schedule_new_events(self):
        scheduler = EventScheduler()
        fired = []

        def chain():
            fired.append(scheduler.now)
            if scheduler.now < 3.0:
                scheduler.schedule_after(1.0, chain)

        scheduler.schedule(1.0, chain)
        scheduler.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_max_events_guard(self):
        scheduler = EventScheduler()

        def forever():
            scheduler.schedule_after(0.1, forever)

        scheduler.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            scheduler.run_until(1e9, max_events=100)

    def test_run_guard(self):
        scheduler = EventScheduler()

        def forever():
            scheduler.schedule_after(0.1, forever)

        scheduler.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            scheduler.run(max_events=50)

    def test_processed_counter(self):
        scheduler = EventScheduler()
        for time in (1.0, 2.0, 3.0):
            scheduler.schedule(time, lambda: None)
        scheduler.run()
        assert scheduler.processed_events == 3


class TestLazyDeletionStats:
    def test_pending_events_excludes_cancellations(self):
        scheduler = EventScheduler()
        handles = [scheduler.schedule(float(i + 1), lambda: None) for i in range(10)]
        assert scheduler.pending_events() == 10
        for handle in handles[:4]:
            handle.cancel()
        assert scheduler.pending_events() == 6
        assert not scheduler.is_empty()

    def test_double_cancel_counts_once(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        other = scheduler.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert scheduler.pending_events() == 1
        other.cancel()
        assert scheduler.is_empty()

    def test_cancel_after_firing_does_not_corrupt_counter(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        scheduler.step()
        handle.cancel()  # already fired; must be a no-op
        assert scheduler.pending_events() == 1
        assert scheduler.step()
        assert scheduler.is_empty()

    def test_cancellation_heavy_queue_is_compacted(self):
        scheduler = EventScheduler()
        keeper = scheduler.schedule(1e9, lambda: None)
        for burst in range(40):
            handles = [
                scheduler.schedule(float(burst) + i / 100.0, lambda: None)
                for i in range(50)
            ]
            for handle in handles:
                handle.cancel()
            # The physical queue must stay within a constant factor of the
            # single live event instead of accumulating 2000 tombstones.
            assert scheduler.queued_entries() <= max(
                2 * scheduler.pending_events(), EventScheduler._MIN_COMPACT_SIZE
            )
        assert scheduler.pending_events() == 1
        assert scheduler.next_event_time() == 1e9
        keeper.cancel()
        assert scheduler.is_empty()

    def test_compaction_inside_callback_does_not_double_fire(self):
        """Regression: run_until must not drain a stale queue alias.

        A callback that mass-cancels events triggers compaction, which
        *replaces* the queue list; events surviving the rebuild used to
        fire twice (once from each list) and drove the live counter
        negative.
        """
        scheduler = EventScheduler()
        fired = []
        victims = [scheduler.schedule(50.0, lambda: fired.append("victim"))
                   for _ in range(200)]
        for i in range(5):
            scheduler.schedule(2.0 + i, lambda i=i: fired.append(("later", i)))

        def cancel_everything():
            fired.append("trigger")
            for handle in victims:
                handle.cancel()

        scheduler.schedule(1.0, cancel_everything)
        scheduler.run_until(100.0)
        assert fired == ["trigger"] + [("later", i) for i in range(5)]
        assert scheduler.pending_events() == 0
        assert scheduler.is_empty()
        # Events scheduled after the compaction must still be visible.
        scheduler.schedule(200.0, lambda: fired.append("late"))
        scheduler.run_until(300.0)
        assert fired[-1] == "late"

    def test_next_event_time_skips_cancelled(self):
        scheduler = EventScheduler()
        first = scheduler.schedule(1.0, lambda: None)
        scheduler.schedule(2.0, lambda: None)
        first.cancel()
        assert scheduler.next_event_time() == 2.0
        assert EventScheduler().next_event_time() is None


# ----------------------------------------------------------------------
# Property-based comparison against a naive reference model
# ----------------------------------------------------------------------
class NaiveScheduler:
    """Straight-line list-based model of the scheduler semantics."""

    def __init__(self):
        self.events = []  # (time, seq, cancelled:list, label)
        self.seq = 0
        self.now = 0.0

    def schedule(self, time, label):
        entry = [time, self.seq, False, label]
        self.seq += 1
        self.events.append(entry)
        return entry

    def pending(self):
        return sum(1 for e in self.events if not e[2])

    def fire_order(self):
        live = sorted((e for e in self.events if not e[2]), key=lambda e: (e[0], e[1]))
        return [e[3] for e in live]


_operations = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.floats(0.0, 100.0, allow_nan=False)),
        st.tuples(st.just("cancel"), st.integers(0, 200)),
    ),
    max_size=60,
)


class TestSchedulerProperties:
    @settings(max_examples=60, deadline=None)
    @given(operations=_operations)
    def test_matches_naive_model(self, operations):
        """Stats, firing order and tie-breaks agree with the naive model."""
        scheduler = EventScheduler()
        naive = NaiveScheduler()
        handles = []
        for op, value in operations:
            if op == "schedule":
                label = len(handles)
                handles.append(
                    (
                        scheduler.schedule(value, lambda l=label: fired.append(l)),
                        naive.schedule(value, label),
                    )
                )
            elif handles:
                real, model = handles[value % len(handles)]
                real.cancel()
                model[2] = True
            assert scheduler.pending_events() == naive.pending()
            assert scheduler.is_empty() == (naive.pending() == 0)
        fired = []
        scheduler.run()
        assert fired == naive.fire_order()
        assert scheduler.is_empty()
        assert scheduler.pending_events() == 0

    @settings(max_examples=40, deadline=None)
    @given(times=st.lists(st.floats(0.0, 50.0, allow_nan=False), max_size=40))
    def test_now_is_monotonic(self, times):
        scheduler = EventScheduler()
        observed = []
        for time in times:
            scheduler.schedule(time, lambda: observed.append(scheduler.now))
        scheduler.run()
        assert observed == sorted(observed)
        if times:
            assert scheduler.now == max(times)

    @settings(max_examples=40, deadline=None)
    @given(
        times=st.lists(
            st.floats(0.0, 10.0, allow_nan=False), min_size=2, max_size=30
        ),
        cancel_mask=st.lists(st.booleans(), min_size=2, max_size=30),
    )
    def test_cancellation_semantics(self, times, cancel_mask):
        """Cancelled events never fire; everything else fires exactly once."""
        scheduler = EventScheduler()
        fired = []
        handles = [
            scheduler.schedule(time, lambda i=i: fired.append(i))
            for i, time in enumerate(times)
        ]
        cancelled = set()
        for index, (handle, cancel) in enumerate(zip(handles, cancel_mask)):
            if cancel:
                handle.cancel()
                cancelled.add(index)
        scheduler.run()
        assert set(fired) == set(range(len(times))) - cancelled
        assert len(fired) == len(set(fired))
