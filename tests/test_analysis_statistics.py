"""Tests for the robust statistics helpers."""

import math

import pytest

from repro.analysis.statistics import (
    finite_mean,
    median,
    relative_error,
    summary_quantiles,
    trimmed_mean,
)
from repro.common.errors import ConfigurationError


class TestTrimmedMean:
    def test_plain_mean_when_nothing_trimmed(self):
        assert trimmed_mean([1.0, 2.0, 3.0], discard_fraction=0.0) == 2.0

    def test_paper_third_trimming(self):
        values = [0.0, 10.0, 10.0, 10.0, 10.0, 1000.0]
        assert trimmed_mean(values, discard_fraction=1.0 / 3.0) == 10.0

    def test_infinities_are_trimmed_first(self):
        values = [math.inf, 10.0, 10.0, 10.0, 10.0, -math.inf]
        assert trimmed_mean(values, discard_fraction=1.0 / 3.0) == 10.0

    def test_all_infinite_returns_inf(self):
        assert trimmed_mean([math.inf, math.inf, math.inf]) == math.inf

    def test_single_value(self):
        assert trimmed_mean([7.0]) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean([])

    def test_excessive_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            trimmed_mean([1.0, 2.0], discard_fraction=0.5)

    def test_order_does_not_matter(self):
        values = [5.0, 1.0, 9.0, 3.0, 7.0, 100.0]
        assert trimmed_mean(values, 1.0 / 3.0) == trimmed_mean(sorted(values), 1.0 / 3.0)


class TestMedian:
    def test_odd_length(self):
        assert median([5.0, 1.0, 3.0]) == 3.0

    def test_even_length(self):
        assert median([1.0, 2.0, 3.0, 4.0]) == 2.5

    def test_with_infinities(self):
        assert median([1.0, 2.0, 3.0, math.inf, math.inf]) == 3.0

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            median([])


class TestFiniteMean:
    def test_ignores_infinities(self):
        assert finite_mean([1.0, 3.0, math.inf]) == 2.0

    def test_all_infinite(self):
        assert finite_mean([math.inf]) == math.inf


class TestRelativeError:
    def test_simple(self):
        assert relative_error(110.0, 100.0) == pytest.approx(0.1)

    def test_infinite_estimate(self):
        assert relative_error(math.inf, 100.0) == math.inf

    def test_zero_truth(self):
        assert relative_error(0.5, 0.0) == 0.5


class TestSummaryQuantiles:
    def test_quantiles_of_finite_sample(self):
        data = list(range(101))
        result = summary_quantiles(data)
        assert result["q50"] == 50.0
        assert result["q5"] == pytest.approx(5.0)
        assert result["q95"] == pytest.approx(95.0)

    def test_all_infinite(self):
        result = summary_quantiles([math.inf, math.inf])
        assert result["q50"] == math.inf
