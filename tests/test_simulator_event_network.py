"""Tests for the event-driven message-passing network."""

import pytest

from repro.common.errors import SimulationError
from repro.common.rng import RandomSource
from repro.simulator.event_sim import EventDrivenNetwork, Message, SimulatedProcess
from repro.simulator.transport import DelayModel, TransportModel


class Recorder(SimulatedProcess):
    """A process that records everything it receives and can echo."""

    def __init__(self, echo: bool = False):
        self.received = []
        self.started = False
        self.crashed = False
        self.echo = echo

    def start(self, network):
        self.started = True

    def handle_message(self, message: Message, network):
        self.received.append(message)
        if self.echo:
            network.send(self.node_id, message.sender, ("echo", message.payload))

    def on_crash(self, network):
        self.crashed = True


def make_network(seed=1, **kwargs):
    return EventDrivenNetwork(RandomSource(seed), **kwargs)


class TestMembership:
    def test_add_process_assigns_ids_and_starts(self):
        network = make_network()
        a, b = Recorder(), Recorder()
        id_a = network.add_process(a)
        id_b = network.add_process(b)
        assert id_a != id_b
        assert a.started and b.started
        assert network.size() == 2
        assert network.node_ids() == sorted([id_a, id_b])

    def test_explicit_id(self):
        network = make_network()
        recorder = Recorder()
        assert network.add_process(recorder, node_id=42) == 42
        assert network.is_alive(42)

    def test_duplicate_id_rejected(self):
        network = make_network()
        network.add_process(Recorder(), node_id=1)
        with pytest.raises(SimulationError):
            network.add_process(Recorder(), node_id=1)

    def test_crash_removes_process(self):
        network = make_network()
        recorder = Recorder()
        node = network.add_process(recorder)
        network.crash_process(node)
        assert not network.is_alive(node)
        assert recorder.crashed

    def test_process_lookup_errors_for_dead_node(self):
        network = make_network()
        with pytest.raises(SimulationError):
            network.process(9)


class TestMessaging:
    def test_message_delivered_with_delay(self):
        network = make_network(delay_model=DelayModel(min_delay=0.1, max_delay=0.2))
        a, b = Recorder(), Recorder()
        id_a, id_b = network.add_process(a), network.add_process(b)
        network.send(id_a, id_b, "hello")
        network.run_until(0.05)
        assert b.received == []
        network.run_until(1.0)
        assert len(b.received) == 1
        assert b.received[0].payload == "hello"
        assert b.received[0].sender == id_a

    def test_request_response_round_trip(self):
        network = make_network()
        a, b = Recorder(), Recorder(echo=True)
        id_a, id_b = network.add_process(a), network.add_process(b)
        network.send(id_a, id_b, "ping")
        network.run_until(5.0)
        assert len(a.received) == 1
        assert a.received[0].payload == ("echo", "ping")

    def test_message_to_crashed_node_dropped(self):
        network = make_network()
        a, b = Recorder(), Recorder()
        id_a, id_b = network.add_process(a), network.add_process(b)
        network.send(id_a, id_b, "late")
        network.crash_process(id_b)
        network.run_until(5.0)
        assert b.received == []
        assert network.dropped_messages == 1

    def test_total_loss_transport_drops_everything(self):
        network = make_network(transport=TransportModel(message_loss_probability=1.0))
        a, b = Recorder(), Recorder()
        id_a, id_b = network.add_process(a), network.add_process(b)
        for _ in range(5):
            network.send(id_a, id_b, "x")
        network.run_until(5.0)
        assert b.received == []
        assert network.dropped_messages == 5
        assert network.sent_messages == 5

    def test_delivery_counters(self):
        network = make_network()
        a, b = Recorder(), Recorder()
        id_a, id_b = network.add_process(a), network.add_process(b)
        network.send(id_a, id_b, "x")
        network.run_until(5.0)
        assert network.delivered_messages == 1


class TestCrashGenerations:
    """Regression tests for crashed-then-reused node identifiers."""

    def test_in_flight_message_not_delivered_to_reused_id(self):
        network = make_network(delay_model=DelayModel(min_delay=0.5, max_delay=0.5))
        a, b = Recorder(), Recorder()
        id_a = network.add_process(a)
        id_b = network.add_process(b, node_id=7)
        network.send(id_a, id_b, "for the old incarnation")
        network.crash_process(id_b)
        reused = Recorder()
        assert network.add_process(reused, node_id=7) == 7
        network.run_until(2.0)
        # The new process must never see traffic addressed to the crashed
        # incarnation of its identifier.
        assert reused.received == []
        assert network.dropped_messages == 1

    def test_new_incarnation_receives_new_traffic(self):
        network = make_network()
        a = Recorder()
        id_a = network.add_process(a)
        network.add_process(Recorder(), node_id=5)
        network.crash_process(5)
        reused = Recorder()
        network.add_process(reused, node_id=5)
        network.send(id_a, 5, "fresh")
        network.run_until(2.0)
        assert [message.payload for message in reused.received] == ["fresh"]

    def test_timer_of_crashed_incarnation_suppressed_for_reused_id(self):
        network = make_network()
        network.add_process(Recorder(), node_id=3)
        fired = []
        network.set_timer(3, 1.0, lambda: fired.append("old"))
        network.crash_process(3)
        network.add_process(Recorder(), node_id=3)
        network.set_timer(3, 1.5, lambda: fired.append("new"))
        network.run_until(2.0)
        assert fired == ["new"]

    def test_generation_counter_tracks_crashes(self):
        network = make_network()
        network.add_process(Recorder(), node_id=2)
        assert network.generation(2) == 0
        network.crash_process(2)
        network.add_process(Recorder(), node_id=2)
        network.crash_process(2)
        assert network.generation(2) == 2

    def test_counters_reconcile_under_crashes_and_loss(self):
        network = make_network(
            seed=13,
            transport=TransportModel(message_loss_probability=0.3),
            delay_model=DelayModel(min_delay=0.1, max_delay=0.4),
        )
        nodes = [network.add_process(Recorder()) for _ in range(6)]
        for step in range(40):
            network.send(nodes[step % 6], nodes[(step + 1) % 6], step)
        network.crash_process(nodes[1])
        network.run_until(0.2)
        # Mid-flight: the ledger must already balance.
        assert network.sent_messages == (
            network.delivered_messages
            + network.dropped_messages
            + network.in_flight_messages
        )
        network.run_until(5.0)
        assert network.in_flight_messages == 0
        assert network.sent_messages == 40
        assert network.sent_messages == (
            network.delivered_messages + network.dropped_messages
        )


class TestTimers:
    def test_timer_fires_for_live_node(self):
        network = make_network()
        recorder = Recorder()
        node = network.add_process(recorder)
        fired = []
        network.set_timer(node, 1.0, lambda: fired.append(network.now))
        network.run_until(2.0)
        assert fired == [1.0]

    def test_timer_suppressed_after_crash(self):
        network = make_network()
        recorder = Recorder()
        node = network.add_process(recorder)
        fired = []
        network.set_timer(node, 1.0, lambda: fired.append(1))
        network.crash_process(node)
        network.run_until(2.0)
        assert fired == []

    def test_clock_drift_scales_local_delays(self):
        network = make_network(clock_drift=0.2)
        node = network.add_process(Recorder())
        real = network.local_delay(node, 10.0)
        assert 8.0 <= real <= 12.0
        assert real != 10.0 or network.local_delay(node, 10.0) == real

    def test_no_drift_by_default(self):
        network = make_network()
        node = network.add_process(Recorder())
        assert network.local_delay(node, 3.0) == 3.0
