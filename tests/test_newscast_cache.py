"""Tests for the NEWSCAST neighbour cache."""

import pytest

from repro.common.errors import ConfigurationError
from repro.common.rng import RandomSource
from repro.newscast.cache import CacheEntry, NewscastCache


class TestCacheEntry:
    def test_ordering_by_timestamp(self):
        old = CacheEntry(timestamp=1.0, peer_id=5)
        new = CacheEntry(timestamp=2.0, peer_id=3)
        assert old < new
        assert new.is_fresher_than(old)

    def test_equal_timestamps_not_fresher(self):
        a = CacheEntry(timestamp=1.0, peer_id=1)
        b = CacheEntry(timestamp=1.0, peer_id=2)
        assert not a.is_fresher_than(b)


class TestBasicCacheBehaviour:
    def test_capacity_enforced(self):
        cache = NewscastCache(3)
        for peer in range(10):
            cache.insert(CacheEntry(timestamp=float(peer), peer_id=peer))
        assert len(cache) == 3
        assert set(cache.peer_ids()) == {7, 8, 9}

    def test_positive_capacity_required(self):
        with pytest.raises(ConfigurationError):
            NewscastCache(0)

    def test_fresher_entry_replaces_stale_one(self):
        cache = NewscastCache(5)
        cache.insert(CacheEntry(timestamp=1.0, peer_id=4))
        cache.insert(CacheEntry(timestamp=3.0, peer_id=4))
        assert cache.entry_for(4).timestamp == 3.0
        assert len(cache) == 1

    def test_stale_entry_does_not_replace_fresh_one(self):
        cache = NewscastCache(5)
        cache.insert(CacheEntry(timestamp=3.0, peer_id=4))
        cache.insert(CacheEntry(timestamp=1.0, peer_id=4))
        assert cache.entry_for(4).timestamp == 3.0

    def test_entries_sorted_freshest_first(self):
        cache = NewscastCache(5)
        for peer, stamp in [(1, 5.0), (2, 1.0), (3, 3.0)]:
            cache.insert(CacheEntry(timestamp=stamp, peer_id=peer))
        assert [entry.peer_id for entry in cache.entries()] == [1, 3, 2]

    def test_remove(self):
        cache = NewscastCache(5)
        cache.insert(CacheEntry(timestamp=1.0, peer_id=9))
        cache.remove(9)
        assert 9 not in cache
        cache.remove(9)  # idempotent

    def test_timestamps(self):
        cache = NewscastCache(5)
        assert cache.oldest_timestamp() is None
        cache.insert(CacheEntry(timestamp=1.0, peer_id=1))
        cache.insert(CacheEntry(timestamp=7.0, peer_id=2))
        assert cache.oldest_timestamp() == 1.0
        assert cache.freshest_timestamp() == 7.0

    def test_copy_is_independent(self):
        cache = NewscastCache(5)
        cache.insert(CacheEntry(timestamp=1.0, peer_id=1))
        clone = cache.copy()
        clone.insert(CacheEntry(timestamp=2.0, peer_id=2))
        assert 2 not in cache

    def test_random_peer(self):
        rng = RandomSource(4)
        cache = NewscastCache(5)
        assert cache.random_peer(rng) is None
        cache.insert(CacheEntry(timestamp=1.0, peer_id=42))
        assert cache.random_peer(rng) == 42


class TestMerge:
    def test_merge_keeps_freshest_and_excludes_self(self):
        mine = NewscastCache(3)
        mine.insert(CacheEntry(timestamp=1.0, peer_id=10))
        mine.insert(CacheEntry(timestamp=2.0, peer_id=11))
        theirs = NewscastCache(3)
        theirs.insert(CacheEntry(timestamp=5.0, peer_id=12))
        theirs.insert(CacheEntry(timestamp=0.5, peer_id=1))  # my own id, stale

        merged = mine.merged_with(theirs, own_id=1, other_id=2, now=6.0)
        peers = set(merged.peer_ids())
        assert 1 not in peers            # own descriptor excluded
        assert 2 in peers                # partner added with fresh timestamp
        assert merged.entry_for(2).timestamp == 6.0
        assert len(merged) == 3          # capacity respected
        assert 12 in peers               # freshest survive

    def test_merge_prefers_freshest_duplicate(self):
        mine = NewscastCache(4)
        mine.insert(CacheEntry(timestamp=1.0, peer_id=7))
        theirs = NewscastCache(4)
        theirs.insert(CacheEntry(timestamp=9.0, peer_id=7))
        merged = mine.merged_with(theirs, own_id=0, other_id=3, now=10.0)
        assert merged.entry_for(7).timestamp == 9.0

    def test_merge_does_not_mutate_inputs(self):
        mine = NewscastCache(2)
        mine.insert(CacheEntry(timestamp=1.0, peer_id=7))
        theirs = NewscastCache(2)
        theirs.insert(CacheEntry(timestamp=2.0, peer_id=8))
        mine.merged_with(theirs, own_id=0, other_id=3, now=4.0)
        assert set(mine.peer_ids()) == {7}
        assert set(theirs.peer_ids()) == {8}
