"""Tests for the primitive aggregation functions (the UPDATE step)."""

import math

import pytest

from repro.common.errors import ProtocolError
from repro.core.functions import (
    AverageFunction,
    GeometricMeanFunction,
    MaxFunction,
    MinFunction,
    PushSumFunction,
    VectorFunction,
)


class TestAverage:
    def test_merge_returns_pair_mean_for_both(self):
        function = AverageFunction()
        assert function.merge(4.0, 10.0) == (7.0, 7.0)

    def test_merge_conserves_sum(self):
        function = AverageFunction()
        a, b = function.merge(3.5, -1.5)
        assert a + b == pytest.approx(3.5 - 1.5)

    def test_initial_state_and_estimate_are_identity(self):
        function = AverageFunction()
        assert function.initial_state(5) == 5.0
        assert function.estimate(5.0) == 5.0

    def test_true_value(self):
        assert AverageFunction().true_value([1.0, 2.0, 3.0]) == 2.0

    def test_true_value_empty_rejected(self):
        with pytest.raises(ProtocolError):
            AverageFunction().true_value([])

    def test_conserved_quantity_is_sum(self):
        assert AverageFunction().conserved_quantity([1.0, 2.0, 3.0]) == 6.0


class TestMinMax:
    def test_min_merge(self):
        assert MinFunction().merge(4.0, 10.0) == (4.0, 4.0)

    def test_max_merge(self):
        assert MaxFunction().merge(4.0, 10.0) == (10.0, 10.0)

    def test_true_values(self):
        assert MinFunction().true_value([3.0, -1.0, 7.0]) == -1.0
        assert MaxFunction().true_value([3.0, -1.0, 7.0]) == 7.0

    def test_true_value_empty_rejected(self):
        with pytest.raises(ProtocolError):
            MinFunction().true_value([])
        with pytest.raises(ProtocolError):
            MaxFunction().true_value([])

    def test_idempotent_merge(self):
        assert MinFunction().merge(5.0, 5.0) == (5.0, 5.0)


class TestGeometricMean:
    def test_merge_is_sqrt_of_product(self):
        a, b = GeometricMeanFunction().merge(4.0, 9.0)
        assert a == b == pytest.approx(6.0)

    def test_merge_conserves_product(self):
        a, b = GeometricMeanFunction().merge(4.0, 9.0)
        assert a * b == pytest.approx(36.0)

    def test_negative_initial_value_rejected(self):
        with pytest.raises(ProtocolError):
            GeometricMeanFunction().initial_state(-1.0)

    def test_true_value(self):
        assert GeometricMeanFunction().true_value([2.0, 8.0]) == pytest.approx(4.0)

    def test_zero_drives_everything_to_zero(self):
        a, b = GeometricMeanFunction().merge(0.0, 100.0)
        assert a == b == 0.0


class TestPushSum:
    def test_initial_state_has_unit_weight(self):
        assert PushSumFunction().initial_state(6.0) == (6.0, 1.0)

    def test_merge_conserves_mass_and_weight(self):
        function = PushSumFunction()
        (vi, wi), (vr, wr) = function.merge((6.0, 1.0), (2.0, 1.0))
        assert vi + vr == pytest.approx(8.0)
        assert wi + wr == pytest.approx(2.0)

    def test_initiator_keeps_half(self):
        function = PushSumFunction()
        (vi, wi), _ = function.merge((6.0, 1.0), (2.0, 1.0))
        assert (vi, wi) == (3.0, 0.5)

    def test_estimate_is_value_over_weight(self):
        assert PushSumFunction().estimate((6.0, 2.0)) == 3.0

    def test_estimate_with_zero_weight_is_none(self):
        assert PushSumFunction().estimate((6.0, 0.0)) is None

    def test_true_value_is_average(self):
        assert PushSumFunction().true_value([2.0, 4.0]) == 3.0


class TestVectorFunction:
    def test_requires_components(self):
        with pytest.raises(ProtocolError):
            VectorFunction([])

    def test_broadcast_scalar_initial_value(self):
        vector = VectorFunction([AverageFunction(), MaxFunction()])
        assert vector.initial_state(3.0) == (3.0, 3.0)

    def test_per_component_initial_values(self):
        vector = VectorFunction([AverageFunction(), MaxFunction()])
        assert vector.initial_state((1.0, 2.0)) == (1.0, 2.0)

    def test_wrong_arity_rejected(self):
        vector = VectorFunction([AverageFunction(), MaxFunction()])
        with pytest.raises(ProtocolError):
            vector.initial_state((1.0, 2.0, 3.0))

    def test_merge_applies_each_component(self):
        vector = VectorFunction([AverageFunction(), MaxFunction()])
        new_a, new_b = vector.merge((0.0, 1.0), (10.0, 5.0))
        assert new_a == (5.0, 5.0)
        assert new_b == (5.0, 5.0)

    def test_merge_asymmetric_component(self):
        vector = VectorFunction([PushSumFunction()])
        new_a, new_b = vector.merge(((6.0, 1.0),), ((2.0, 1.0),))
        assert new_a != new_b

    def test_estimates_per_component(self):
        vector = VectorFunction([AverageFunction(), MaxFunction()])
        assert vector.estimates((2.0, 9.0)) == (2.0, 9.0)

    def test_scalar_estimate_is_first_component(self):
        vector = VectorFunction([AverageFunction(), MaxFunction()])
        assert vector.estimate((2.0, 9.0)) == 2.0

    def test_len(self):
        assert len(VectorFunction([AverageFunction()] * 4)) == 4
