"""Tests for the StaticTopology container and the OverlayProvider contract."""

import pytest

from repro.common.errors import TopologyError
from repro.common.rng import RandomSource
from repro.topology.base import StaticTopology


def triangle() -> StaticTopology:
    return StaticTopology({0: {1, 2}, 1: {2}, 2: set()}, name="triangle")


class TestConstruction:
    def test_adjacency_is_symmetrised(self):
        topology = StaticTopology({0: {1}, 1: set(), 2: {1}})
        assert topology.has_edge(1, 0)
        assert topology.has_edge(1, 2)

    def test_self_loop_rejected(self):
        with pytest.raises(TopologyError):
            StaticTopology({0: {0}})

    def test_unknown_neighbour_rejected(self):
        with pytest.raises(TopologyError):
            StaticTopology({0: {5}})

    def test_name_is_kept(self):
        assert triangle().name == "triangle"


class TestQueries:
    def test_node_ids(self):
        assert sorted(triangle().node_ids()) == [0, 1, 2]

    def test_neighbors(self):
        assert set(triangle().neighbors(0)) == {1, 2}

    def test_neighbors_unknown_node(self):
        with pytest.raises(TopologyError):
            triangle().neighbors(99)

    def test_degree_and_average_degree(self):
        topology = triangle()
        assert topology.degree(0) == 2
        assert topology.average_degree() == pytest.approx(2.0)

    def test_degree_sequence_sorted_by_node(self):
        assert triangle().degree_sequence() == [2, 2, 2]

    def test_edges_listed_once(self):
        assert sorted(triangle().edges()) == [(0, 1), (0, 2), (1, 2)]

    def test_edge_count(self):
        assert triangle().edge_count() == 3

    def test_size_and_contains(self):
        topology = triangle()
        assert topology.size() == 3
        assert topology.contains(1)
        assert not topology.contains(7)

    def test_adjacency_copy_is_independent(self):
        topology = triangle()
        copy = topology.adjacency_copy()
        copy[0].add(99)
        assert not topology.has_edge(0, 99)

    def test_to_networkx_roundtrip(self):
        graph = triangle().to_networkx()
        assert graph.number_of_nodes() == 3
        assert graph.number_of_edges() == 3


class TestConnectivity:
    def test_triangle_is_connected(self):
        assert triangle().is_connected()

    def test_disconnected_graph(self):
        topology = StaticTopology({0: {1}, 1: set(), 2: {3}, 3: set()})
        assert not topology.is_connected()
        components = topology.connected_components()
        assert len(components) == 2
        assert {frozenset(c) for c in components} == {frozenset({0, 1}), frozenset({2, 3})}

    def test_empty_graph_counts_as_connected(self):
        assert StaticTopology({}).is_connected()


class TestMutation:
    def test_select_peer_returns_neighbour(self, rng):
        topology = triangle()
        for _ in range(20):
            peer = topology.select_peer(0, rng)
            assert peer in (1, 2)

    def test_select_peer_isolated_node_returns_none(self, rng):
        topology = StaticTopology({0: set(), 1: set()})
        assert topology.select_peer(0, rng) is None

    def test_remove_node_removes_incident_edges(self):
        topology = triangle()
        topology.on_node_removed(1)
        assert not topology.contains(1)
        assert set(topology.neighbors(0)) == {2}
        assert topology.edge_count() == 1

    def test_remove_unknown_node_is_noop(self):
        topology = triangle()
        topology.on_node_removed(42)
        assert topology.size() == 3

    def test_add_node_attaches_to_existing(self, rng):
        topology = triangle()
        topology.on_node_added(3, rng)
        assert topology.contains(3)
        assert topology.degree(3) >= 1

    def test_add_duplicate_node_rejected(self, rng):
        topology = triangle()
        with pytest.raises(TopologyError):
            topology.on_node_added(0, rng)

    def test_add_node_to_empty_graph(self, rng):
        topology = StaticTopology({})
        topology.on_node_added(0, rng)
        assert topology.contains(0)
        assert topology.degree(0) == 0
