"""Tests for the empirical convergence measures."""

import math

import pytest

from repro.analysis.convergence import (
    mean_convergence_factor,
    normalized_mean_variance,
    summarize_convergence,
    variance_reduction_curve,
)
from repro.common.errors import ExperimentError
from repro.simulator.metrics import CycleRecord, SimulationTrace


def trace_from(variances, means=None) -> SimulationTrace:
    trace = SimulationTrace()
    means = means or [1.0] * len(variances)
    for cycle, (variance, mean) in enumerate(zip(variances, means)):
        trace.add(
            CycleRecord(
                cycle=cycle,
                participant_count=50,
                mean=mean,
                variance=variance,
                minimum=mean,
                maximum=mean,
            )
        )
    return trace


class TestMeanConvergenceFactor:
    def test_average_over_traces(self):
        traces = [trace_from([1.0, 0.25]), trace_from([1.0, 0.0625, 0.25 * 0.0625])]
        # factors: 0.25 and 0.0625^(1/1)... second trace uses full window:
        # (0.015625/1)^(1/2) = 0.125
        assert mean_convergence_factor(traces) == pytest.approx((0.25 + 0.125) / 2)

    def test_window_restriction(self):
        traces = [trace_from([1.0, 0.5, 0.005])]
        assert mean_convergence_factor(traces, cycles=1) == pytest.approx(0.5)

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            mean_convergence_factor([])


class TestVarianceReductionCurve:
    def test_average_across_traces(self):
        traces = [trace_from([2.0, 1.0]), trace_from([4.0, 1.0])]
        curve = variance_reduction_curve(traces)
        assert curve[0] == 1.0
        assert curve[1] == pytest.approx((0.5 + 0.25) / 2)

    def test_truncates_to_shortest(self):
        traces = [trace_from([1.0, 0.5]), trace_from([1.0, 0.5, 0.25])]
        assert len(variance_reduction_curve(traces)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            variance_reduction_curve([])


class TestNormalizedMeanVariance:
    def test_drift_variance_normalised(self):
        # Two runs, initial mean 1.0, final means 1.1 and 0.9 -> drift +-0.1,
        # variance of drift = 0.02; initial variance 4.0 -> 0.005.
        traces = [
            trace_from([4.0, 1.0], means=[1.0, 1.1]),
            trace_from([4.0, 1.0], means=[1.0, 0.9]),
        ]
        value = normalized_mean_variance(traces)
        assert value == pytest.approx(0.02 / 4.0)

    def test_without_subtracting_initial(self):
        traces = [
            trace_from([4.0, 1.0], means=[1.0, 1.1]),
            trace_from([4.0, 1.0], means=[1.0, 0.9]),
        ]
        raw = normalized_mean_variance(traces, subtract_initial=False)
        assert raw == pytest.approx(0.02 / 4.0)  # same here because µ0 identical

    def test_at_specific_cycle(self):
        traces = [
            trace_from([4.0, 2.0, 1.0], means=[1.0, 1.2, 5.0]),
            trace_from([4.0, 2.0, 1.0], means=[1.0, 0.8, 5.0]),
        ]
        middle = normalized_mean_variance(traces, at_cycle=1)
        assert middle == pytest.approx(0.08 / 4.0)

    def test_requires_two_runs(self):
        with pytest.raises(ExperimentError):
            normalized_mean_variance([trace_from([1.0, 0.5])])

    def test_zero_initial_variance_rejected(self):
        traces = [trace_from([0.0, 0.0]), trace_from([0.0, 0.0])]
        with pytest.raises(ExperimentError):
            normalized_mean_variance(traces)


class TestSummarizeConvergence:
    def test_summary_contents(self):
        traces = [trace_from([1.0, 0.25, 0.0625]), trace_from([1.0, 0.25, 0.0625])]
        summary = summarize_convergence(traces)
        assert summary.runs == 2
        assert summary.cycles == 2
        assert summary.convergence_factor == pytest.approx(0.25)
        assert summary.final_variance_reduction == pytest.approx(0.0625)
        assert summary.final_mean == pytest.approx(1.0)
        assert summary.as_dict()["runs"] == 2

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            summarize_convergence([])
